package ndlog

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestParseMinCost(t *testing.T) {
	src := `
sp1 pathCost(@S,D,C) :- link(@S,D,C).
sp2 pathCost(@S,D,C1+C2) :- link(@Z,S,C1), bestPathCost(@Z,D,C2).
sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(prog.Rules))
	}
	if prog.Rules[0].Label != "sp1" || prog.Rules[2].Label != "sp3" {
		t.Errorf("labels wrong: %q %q", prog.Rules[0].Label, prog.Rules[2].Label)
	}
	if prog.Rules[0].Head.Pred != "pathCost" || prog.Rules[0].Head.LocPos != 0 {
		t.Errorf("sp1 head parsed wrong: %+v", prog.Rules[0].Head)
	}
	agg, pos := prog.Rules[2].AggSpec()
	if agg == nil || agg.Fn != "MIN" || pos != 2 || agg.Vars[0] != "C" {
		t.Errorf("sp3 aggregate parsed wrong: %+v at %d", agg, pos)
	}
	// sp2's head third argument is an arithmetic expression.
	if _, ok := prog.Rules[1].Head.Args[2].(*BinOp); !ok {
		t.Errorf("sp2 head C1+C2 parsed as %T", prog.Rules[1].Head.Args[2])
	}
	if err := Validate(prog); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		`sp1 pathCost(@S,D,C) :- link(@S,D,C).`,
		`f1 ePacket(@Next,Src,Dst,Payload) :- ePacket(@N,Src,Dst,Payload), bestHop(@N,Dst,Next).`,
		`c0 numChild(@X,VID,COUNT<*>) :- prov(@X,VID,RID,RLoc).`,
		`r pqList(@X,QID,AGGLIST<RID,RLoc>) :- prov(@X,UID,RID,RLoc), RID != QID.`,
		`r2 out(@X,Y) :- in(@X,Y), Y = f_concat(X,Y), f_member(Y,X) == 0.`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q (printed from %q): %v", printed, src, err)
		}
		if got := p2.String(); got != printed {
			t.Errorf("round trip unstable:\n first: %s\nsecond: %s", printed, got)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
# hash comment
/* block
   comment */
sp1 pathCost(@S,D,C) :- link(@S,D,C). // trailing
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(prog.Rules))
	}
}

func TestParseFacts(t *testing.T) {
	prog, err := Parse(`link(@a,b,3).
link(@b,a,3).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 2 {
		t.Fatalf("facts = %d, want 2", len(prog.Facts))
	}
	f := prog.Facts[0]
	if f.Pred != "link" || f.LocPos != 0 {
		t.Errorf("fact parsed wrong: %+v", f)
	}
	c0 := f.Args[0].(*Const)
	if c0.Val.AsNode() != types.NodeID(0) {
		t.Errorf("node constant a = %v", c0.Val)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`p(@X Y) :- q(@X,Y).`,        // missing comma
		`p(@X,Y) :- q(@X,Y)`,         // missing period
		`p(@X,@Y) :- q(@X,Y).`,       // two location specifiers
		`p(@X,Y) :- q(@X,"unclosed.`, // unterminated string
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"non-localized body", `r p(@X,Y) :- q(@X,Y), s(@Y,X).`},
		{"unbound head var", `r p(@X,Z) :- q(@X,Y).`},
		{"unbound cond var", `r p(@X,Y) :- q(@X,Y), Z == 1.`},
		{"missing head loc", `r p(X,Y) :- q(@X,Y).`},
		{"remote agg head", `r p(@Y,min<C>) :- q(@X,Y,C).`},
		{"sum aggregate", `r p(@X,sum<Y>) :- q(@X,Y).`},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if err := Validate(prog); err == nil {
			t.Errorf("%s: Validate accepted %q", tc.name, tc.src)
		}
	}
}

func TestEventPredicates(t *testing.T) {
	if !IsEventPred("ePacket") || !IsEventPred("eProvQuery") {
		t.Error("event predicates not recognized")
	}
	if IsEventPred("edge") || IsEventPred("link") || IsEventPred("e") {
		t.Error("non-events recognized as events")
	}
}

// TestProvenanceRewriteMinCost checks the Algorithm 1 output structure
// against the paper's §4.2.1 example (rules r20-r24 for sp2).
func TestProvenanceRewriteMinCost(t *testing.T) {
	prog := MustParse(`
sp1 pathCost(@S,D,C) :- link(@S,D,C).
sp2 pathCost(@S,D,C1+C2) :- link(@Z,S,C1), bestPathCost(@Z,D,C2).
sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
`)
	rw, err := ProvenanceRewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]*Rule{}
	for _, r := range rw.Rules {
		byLabel[r.Label] = r
	}

	// r20: the temp event rule contains the original body plus the
	// bookkeeping assignments.
	r20 := byLabel["sp2_1"]
	if r20 == nil {
		t.Fatalf("sp2_1 missing; have %v", labels(rw))
	}
	if r20.Head.Pred != "ePathCostTemp" {
		t.Errorf("sp2_1 head = %s, want ePathCostTemp", r20.Head.Pred)
	}
	s := r20.String()
	for _, frag := range []string{"link(@Z,S,C1)", "bestPathCost(@Z,D,C2)",
		`R = "sp2"`, "RLoc = Z", "f_vid(\"link\",Z,S,C1)", "f_append(PID1,PID2)", "f_rid(R,RLoc,List)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("sp2_1 %q missing fragment %q", s, frag)
		}
	}

	// r22: ruleExec (shared, emitted under the first pathCost rule).
	if r := byLabel["sp1_2"]; r == nil || r.Head.Pred != "ruleExec" {
		t.Errorf("sp1_2 ruleExec rule missing/wrong: %v", r)
	}
	// r21/r23: the shipped event and the subsumed original derivation.
	if r := byLabel["sp1_3"]; r == nil || r.Head.Pred != "ePathCost" {
		t.Errorf("sp1_3 eH rule missing/wrong: %v", r)
	}
	if r := byLabel["sp1_4"]; r == nil || r.Head.Pred != "pathCost" {
		t.Errorf("sp1_4 derivation rule missing/wrong: %v", r)
	}
	// r24: prov at the head node.
	r24 := byLabel["sp1_5"]
	if r24 == nil || r24.Head.Pred != "prov" {
		t.Fatalf("sp1_5 prov rule missing/wrong: %v", r24)
	}
	if !strings.Contains(r24.String(), `f_vid("pathCost",S,D,C)`) {
		t.Errorf("sp1_5 %q lacks VID computation", r24.String())
	}

	// Aggregate rule: original preserved, provenance traced to the winner.
	if r := byLabel["sp3"]; r == nil {
		t.Errorf("original sp3 not preserved")
	}
	r31 := byLabel["sp3_1"]
	if r31 == nil {
		t.Fatalf("sp3_1 missing")
	}
	if !strings.Contains(r31.String(), "bestPathCost(@S,D,C), pathCost(@S,D,C)") {
		t.Errorf("sp3_1 %q does not join head with winning input", r31.String())
	}

	// Base-tuple registration with null RID.
	pl := byLabel["prov_link"]
	if pl == nil || !strings.Contains(pl.String(), "f_nullid()") {
		t.Fatalf("prov_link rule missing/wrong: %v", pl)
	}

	// The rewritten program must itself validate.
	if err := Validate(rw); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
}

func labels(p *Program) []string {
	var out []string
	for _, r := range p.Rules {
		out = append(out, r.Label)
	}
	return out
}

// TestRewriteEventHead checks name mangling when the head is already an
// event (PACKETFORWARD's ePacket rule).
func TestRewriteEventHead(t *testing.T) {
	prog := MustParse(`f1 ePacket(@H,S,D,P) :- ePacket(@N,S,D,P), bestHop(@N,D,H).`)
	rw, err := ProvenanceRewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := rw.String()
	if !strings.Contains(s, "ePacketProvTemp") || !strings.Contains(s, "ePacketProvMsg") {
		t.Errorf("event-head mangling missing:\n%s", s)
	}
	if err := Validate(rw); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
}
