package ndlog

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF   tokenKind = iota
	tokIdent           // lowercase-initial identifier: predicates, functions, labels
	tokVar             // uppercase-initial identifier: variables
	tokNumber
	tokString
	tokPunct // single/double-char punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("ndlog: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 <= len(l.src) {
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				if l.pos >= len(l.src) {
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		case c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

var twoCharPunct = map[string]bool{
	":-": true, "==": true, "!=": true, "<=": true, ">=": true,
	"&&": true, "||": true,
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if unicode.IsUpper(rune(text[0])) || text[0] == '_' {
			kind = tokVar
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case c == '"' || c == '\'':
		quote := c
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated string literal")
			}
			ch := l.advance()
			if ch == quote {
				// Tolerate the paper's ''sp2'' double-quote style: a
				// doubled quote immediately after closing is skipped.
				if l.pos < len(l.src) && l.peekByte() == quote && sb.Len() == 0 {
					l.advance()
					continue
				}
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				sb.WriteByte(l.advance())
				continue
			}
			sb.WriteByte(ch)
		}
		return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
	default:
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			if twoCharPunct[two] {
				l.advance()
				l.advance()
				return token{kind: tokPunct, text: two, line: line, col: col}, nil
			}
		}
		switch c {
		case '(', ')', ',', '.', '@', '+', '-', '*', '/', '<', '>', '=', '!':
			l.advance()
			return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
		}
		return token{}, l.errorf("unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// tokenize lexes the whole source.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
