package ndlog

import (
	"fmt"
)

// Localize rewrites rules whose bodies span two locations into localized
// rules, following the classic declarative-networking localization rewrite
// (Loo et al., SIGMOD 2006) that the paper's Algorithm 1 assumes has
// already run ("takes as input a localized NDlog program").
//
// A rule of the form
//
//	h(@H,...) :- a1(@X,...), ..., link(@X,Y,...), b1(@Y,...), ...
//
// where the only bridge between the two location variables is a body atom
// at @X that binds Y (a "link" atom), splits into
//
//	eH_loc1(@Y, vars...) :- a1(@X,...), ..., link(@X,Y,...), [terms@X].
//	h(@H,...)            :- eH_loc1(@Y, vars...), b1(@Y,...), [terms@Y].
//
// where vars are the X-side bindings the Y side still needs. Assignments
// and conditions run on the earliest side where their inputs are bound.
// Rules already localized pass through unchanged; bodies spanning three or
// more locations are rejected (as in the original literature, repeated
// application after introducing intermediate predicates is future work).
func Localize(p *Program) (*Program, error) {
	out := &Program{Facts: p.Facts}
	for i, r := range p.Rules {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("r%d", i+1)
		}
		if _, err := BodyLocation(r); err == nil {
			out.Rules = append(out.Rules, r)
			continue
		}
		split, err := localizeRule(r, label)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", label, err)
		}
		out.Rules = append(out.Rules, split...)
	}
	return out, nil
}

func localizeRule(r *Rule, label string) ([]*Rule, error) {
	atoms := r.BodyAtoms()
	locOf := func(a *Atom) (string, error) {
		if a.LocPos < 0 {
			return "", fmt.Errorf("atom %s has no location specifier", a.Pred)
		}
		v, ok := a.Args[a.LocPos].(*Var)
		if !ok {
			return "", fmt.Errorf("atom %s location must be a variable", a.Pred)
		}
		return v.Name, nil
	}

	// Partition atoms by location variable.
	byLoc := map[string][]*Atom{}
	var locOrder []string
	for _, a := range atoms {
		lv, err := locOf(a)
		if err != nil {
			return nil, err
		}
		if _, seen := byLoc[lv]; !seen {
			locOrder = append(locOrder, lv)
		}
		byLoc[lv] = append(byLoc[lv], a)
	}
	if len(locOrder) != 2 {
		return nil, fmt.Errorf("body spans %d locations; only 1 or 2 supported", len(locOrder))
	}

	// Pick the sending side X: the side containing a bridge atom that
	// binds the other side's location variable.
	var xLoc, yLoc string
	var bridgeFound bool
	for _, cand := range []struct{ x, y string }{
		{locOrder[0], locOrder[1]},
		{locOrder[1], locOrder[0]},
	} {
		for _, a := range byLoc[cand.x] {
			for _, arg := range a.Args {
				if v, ok := arg.(*Var); ok && v.Name == cand.y {
					xLoc, yLoc, bridgeFound = cand.x, cand.y, true
				}
			}
		}
		if bridgeFound {
			break
		}
	}
	if !bridgeFound {
		return nil, fmt.Errorf("no body atom links @%s and @%s", locOrder[0], locOrder[1])
	}

	// Classify non-atom terms: a term runs on X if its inputs are bound by
	// X-side atoms (considering earlier X-side assignments); otherwise on Y.
	boundX := map[string]bool{}
	for _, a := range byLoc[xLoc] {
		for _, arg := range a.Args {
			for _, v := range Vars(arg) {
				boundX[v] = true
			}
		}
	}
	var xTerms, yTerms []BodyTerm
	for _, t := range r.Body {
		switch v := t.(type) {
		case *Atom:
			continue
		case *Assign:
			ready := true
			for _, dep := range Vars(v.Rhs) {
				if !boundX[dep] {
					ready = false
					break
				}
			}
			if ready {
				xTerms = append(xTerms, v)
				boundX[v.Lhs] = true
			} else {
				yTerms = append(yTerms, v)
			}
		case *Cond:
			ready := true
			for _, dep := range Vars(v.Expr) {
				if !boundX[dep] {
					ready = false
					break
				}
			}
			if ready {
				xTerms = append(xTerms, v)
			} else {
				yTerms = append(yTerms, v)
			}
		}
	}

	// Variables the Y side needs from X: anything bound on X that appears
	// in Y-side atoms, Y-side terms, or the head.
	needed := map[string]bool{yLoc: true}
	markNeeded := func(e Expr) {
		for _, v := range Vars(e) {
			needed[v] = true
		}
	}
	for _, a := range byLoc[yLoc] {
		for _, arg := range a.Args {
			markNeeded(arg)
		}
	}
	for _, t := range yTerms {
		switch v := t.(type) {
		case *Assign:
			markNeeded(v.Rhs)
		case *Cond:
			markNeeded(v.Expr)
		}
	}
	for _, arg := range r.Head.Args {
		markNeeded(arg)
	}
	var shipped []string
	shipped = append(shipped, yLoc) // location first, by convention
	for v := range needed {
		if v != yLoc && boundX[v] {
			shipped = append(shipped, v)
		}
	}
	// Deterministic order after the location.
	sortStrings(shipped[1:])

	tmpName := "e" + title(r.Head.Pred) + "Loc" + label

	// Rule 1 at X: ship the needed bindings to Y.
	var body1 []BodyTerm
	for _, a := range byLoc[xLoc] {
		body1 = append(body1, a)
	}
	body1 = append(body1, xTerms...)
	rule1 := &Rule{
		Label: label + "a",
		Head:  &Atom{Pred: tmpName, LocPos: 0, Args: varAtoms(shipped...)},
		Body:  body1,
	}

	// Rule 2 at Y: join with the Y-side atoms and derive the head.
	body2 := []BodyTerm{&Atom{Pred: tmpName, LocPos: 0, Args: varAtoms(shipped...)}}
	for _, a := range byLoc[yLoc] {
		body2 = append(body2, a)
	}
	body2 = append(body2, yTerms...)
	rule2 := &Rule{Label: label + "b", Head: r.Head, Body: body2}
	return []*Rule{rule1, rule2}, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
