package ndlog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// randExprAST builds a random expression AST of bounded depth.
func randExprAST(rng *rand.Rand, depth int, vars []string) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &Var{Name: vars[rng.Intn(len(vars))]}
		case 1:
			return &Const{Val: types.Int(int64(rng.Intn(100)))}
		default:
			return &Const{Val: types.Str(fmt.Sprintf("s%d", rng.Intn(10)))}
		}
	}
	if rng.Intn(4) == 0 {
		n := rng.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = randExprAST(rng, depth-1, vars)
		}
		return &Call{Fn: "f_concat", Args: args}
	}
	ops := []string{"+", "-", "*", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
	return &BinOp{
		Op: ops[rng.Intn(len(ops))],
		L:  randExprAST(rng, depth-1, vars),
		R:  randExprAST(rng, depth-1, vars),
	}
}

// randRuleAST builds a random safe rule over the given variables.
func randRuleAST(rng *rand.Rand) *Rule {
	vars := []string{"X", "Y", "Z", "W"}
	body := []BodyTerm{
		&Atom{Pred: "p", LocPos: 0, Args: []Expr{
			&Var{Name: "X"}, &Var{Name: "Y"}, &Var{Name: "Z"},
		}},
	}
	if rng.Intn(2) == 0 {
		body = append(body, &Atom{Pred: "q", LocPos: 0, Args: []Expr{
			&Var{Name: "X"}, &Var{Name: "W"},
		}})
	} else {
		body = append(body, &Assign{Lhs: "W", Rhs: randExprAST(rng, 2, vars[:3])})
	}
	if rng.Intn(2) == 0 {
		body = append(body, &Cond{Expr: &BinOp{Op: ">", L: &Var{Name: "Y"}, R: &Const{Val: types.Int(0)}}})
	}
	head := &Atom{Pred: "h", LocPos: 0, Args: []Expr{
		&Var{Name: "X"}, randExprAST(rng, 2, vars),
	}}
	return &Rule{Label: fmt.Sprintf("r%d", rng.Intn(100)), Head: head, Body: body}
}

// TestPrinterParserRoundTripRandom: printing a random rule AST and parsing
// it back must yield a rule that prints identically (print∘parse∘print =
// print), and the reparsed rule must validate iff the original did.
func TestPrinterParserRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 500; trial++ {
		r := randRuleAST(rng)
		printed := r.String()
		prog, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: printed form does not parse: %v\n%s", trial, err, printed)
		}
		if len(prog.Rules) != 1 {
			t.Fatalf("trial %d: got %d rules from %q", trial, len(prog.Rules), printed)
		}
		again := prog.Rules[0].String()
		if again != printed {
			t.Fatalf("trial %d: round trip unstable:\n first: %s\nsecond: %s", trial, printed, again)
		}
	}
}
