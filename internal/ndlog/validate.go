package ndlog

import (
	"fmt"
)

// Validate checks that a program satisfies the restrictions assumed by the
// paper's Algorithm 1 and by the execution engine:
//
//   - every head atom carries a location specifier;
//   - every rule body is *localized*: all body atoms share one location
//     variable (the paper's t1(@X,...),...,tn(@X,...) form);
//   - aggregate rules have exactly one aggregate in the head, a single body
//     atom and a local head (the aggregate's group is co-located with its
//     inputs), restricted to MIN/MAX/COUNT/AGGLIST as in the paper;
//   - rules are safe: every head variable and every condition variable is
//     bound by a body atom or an assignment, and assignments bind fresh
//     variables in dependency order.
func Validate(p *Program) error {
	aggHeads, plainHeads := map[string]bool{}, map[string]bool{}
	for _, r := range p.Rules {
		if err := validateRule(r); err != nil {
			return fmt.Errorf("rule %s: %w", ruleName(r), err)
		}
		if agg, _ := r.AggSpec(); agg != nil {
			aggHeads[r.Head.Pred] = true
		} else {
			plainHeads[r.Head.Pred] = true
		}
	}
	for pred := range aggHeads {
		if plainHeads[pred] {
			return fmt.Errorf("predicate %s is derived by both aggregate and non-aggregate rules", pred)
		}
	}
	for _, f := range p.Facts {
		if f.LocPos < 0 {
			return fmt.Errorf("fact %s: missing location specifier", f.Pred)
		}
		for _, a := range f.Args {
			if _, ok := a.(*Const); !ok {
				return fmt.Errorf("fact %s: arguments must be constants", f.Pred)
			}
		}
	}
	return nil
}

func ruleName(r *Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return r.Head.Pred
}

func validateRule(r *Rule) error {
	if r.Head.LocPos < 0 {
		return fmt.Errorf("head %s has no location specifier", r.Head.Pred)
	}
	atoms := r.BodyAtoms()
	if len(atoms) == 0 {
		return fmt.Errorf("body has no predicate atoms")
	}

	// Localization: one shared location variable across body atoms.
	locVar, err := BodyLocation(r)
	if err != nil {
		return err
	}

	// Aggregate restrictions.
	aggCount := 0
	for _, a := range r.Head.Args {
		if _, ok := a.(*Agg); ok {
			aggCount++
		}
	}
	if aggCount > 1 {
		return fmt.Errorf("multiple aggregates in head")
	}
	if agg, _ := r.AggSpec(); agg != nil {
		switch agg.Fn {
		case "MIN", "MAX", "COUNT", "AGGLIST":
		default:
			return fmt.Errorf("unsupported aggregate %s (the paper restricts provenance to MIN/MAX)", agg.Fn)
		}
		if hv, ok := r.Head.Args[r.Head.LocPos].(*Var); !ok || hv.Name != locVar {
			return fmt.Errorf("aggregate rule head must be local to its body (@%s)", locVar)
		}
	}

	// Safety: walk body terms in order, tracking bound variables.
	bound := map[string]bool{}
	for _, a := range atoms {
		for _, arg := range a.Args {
			for _, v := range Vars(arg) {
				bound[v] = true
			}
		}
	}
	for _, t := range r.Body {
		switch v := t.(type) {
		case *Assign:
			for _, dep := range Vars(v.Rhs) {
				if !bound[dep] {
					return fmt.Errorf("assignment to %s uses unbound variable %s", v.Lhs, dep)
				}
			}
			bound[v.Lhs] = true
		case *Cond:
			for _, dep := range Vars(v.Expr) {
				if !bound[dep] {
					return fmt.Errorf("condition uses unbound variable %s", dep)
				}
			}
		}
	}
	for _, arg := range r.Head.Args {
		if _, ok := arg.(*Agg); ok {
			continue
		}
		for _, v := range Vars(arg) {
			if !bound[v] {
				return fmt.Errorf("head variable %s is unbound", v)
			}
		}
	}
	return nil
}

// BodyLocation returns the shared location variable of the rule body,
// erroring when the body is not localized.
func BodyLocation(r *Rule) (string, error) {
	locVar := ""
	for _, a := range r.BodyAtoms() {
		if a.LocPos < 0 {
			return "", fmt.Errorf("body atom %s has no location specifier", a.Pred)
		}
		v, ok := a.Args[a.LocPos].(*Var)
		if !ok {
			return "", fmt.Errorf("body atom %s location must be a variable", a.Pred)
		}
		if locVar == "" {
			locVar = v.Name
		} else if locVar != v.Name {
			return "", fmt.Errorf("body is not localized: atoms at @%s and @%s", locVar, v.Name)
		}
	}
	return locVar, nil
}

// HeadPreds returns the set of predicates derived by some rule of the
// program.
func HeadPreds(p *Program) map[string]bool {
	out := map[string]bool{}
	for _, r := range p.Rules {
		out[r.Head.Pred] = true
	}
	return out
}

// BasePreds returns the predicates that appear in rule bodies (or facts)
// but are never derived — the program's EDB relations.
func BasePreds(p *Program) map[string]bool {
	heads := HeadPreds(p)
	out := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.BodyAtoms() {
			if !heads[a.Pred] && !a.IsEvent() {
				out[a.Pred] = true
			}
		}
	}
	for _, f := range p.Facts {
		if !heads[f.Pred] {
			out[f.Pred] = true
		}
	}
	return out
}
