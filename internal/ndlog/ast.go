// Package ndlog implements the Network Datalog (NDlog) language used by
// ExSPAN: a distributed Datalog with location specifiers (@), event
// predicates, aggregates and built-in functions. The package provides a
// lexer, parser, pretty-printer, localization checks and the automatic
// provenance rewrite of the paper's Algorithm 1.
package ndlog

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Program is a parsed NDlog program: an ordered list of rules plus any
// ground facts.
type Program struct {
	Rules []*Rule
	Facts []*Atom
}

// Rule is one NDlog rule: Label Head :- Body.
// A rule with an empty body is a fact-producing rule (not used in the
// paper's programs but accepted).
type Rule struct {
	Label string
	Head  *Atom
	Body  []BodyTerm
}

// BodyTerm is either a predicate atom, an assignment, or a boolean
// condition.
type BodyTerm interface{ bodyTerm() }

// Atom is a predicate with arguments, e.g. link(@S,D,C). LocPos is the
// argument index carrying the @ location specifier, or -1 when absent.
type Atom struct {
	Pred   string
	LocPos int
	Args   []Expr
}

func (*Atom) bodyTerm() {}

// IsEvent reports whether the predicate is an event (transient, not
// materialized), following the paper's convention that event predicate
// names start with "e" followed by an uppercase letter.
func (a *Atom) IsEvent() bool { return IsEventPred(a.Pred) }

// IsEventPred reports whether a predicate name denotes an event.
func IsEventPred(pred string) bool {
	return len(pred) >= 2 && pred[0] == 'e' && pred[1] >= 'A' && pred[1] <= 'Z'
}

// Assign binds a fresh variable to the value of an expression, e.g.
// C = C1 + C2.
type Assign struct {
	Lhs string // variable name
	Rhs Expr
}

func (*Assign) bodyTerm() {}

// Cond is a boolean constraint over bound variables, e.g. Z != Y.
type Cond struct {
	Expr Expr
}

func (*Cond) bodyTerm() {}

// Expr is an NDlog expression.
type Expr interface{ expr() }

// Var references a variable (names start with an uppercase letter).
type Var struct{ Name string }

// Const is a literal value (integer, string, or node).
type Const struct{ Val types.Value }

// BinOp is a binary operation. Supported operators: + - * / == != < <= >
// >= && ||. On strings, + is concatenation.
type BinOp struct {
	Op   string
	L, R Expr
}

// Call invokes a built-in function, e.g. f_sha1, f_append, f_size.
type Call struct {
	Fn   string
	Args []Expr
}

// Agg is an aggregate head argument, e.g. min<C> or COUNT<*>. For MIN and
// MAX, Vars[0] is the aggregated attribute and any further variables are
// carried attributes resolved by arg-min/arg-max (used by PATHVECTOR to
// carry the path alongside its cost). Star marks COUNT<*>.
type Agg struct {
	Fn   string // MIN, MAX, COUNT, SUM, AGGLIST
	Vars []string
	Star bool
}

func (*Var) expr()   {}
func (*Const) expr() {}
func (*BinOp) expr() {}
func (*Call) expr()  {}
func (*Agg) expr()   {}

// AggSpec returns the aggregate argument of the rule head and its position,
// or (nil, -1) when the rule is not an aggregate rule.
func (r *Rule) AggSpec() (*Agg, int) {
	for i, a := range r.Head.Args {
		if agg, ok := a.(*Agg); ok {
			return agg, i
		}
	}
	return nil, -1
}

// BodyAtoms returns the predicate atoms of the body in order.
func (r *Rule) BodyAtoms() []*Atom {
	var out []*Atom
	for _, t := range r.Body {
		if a, ok := t.(*Atom); ok {
			out = append(out, a)
		}
	}
	return out
}

// Vars returns the set of variable names appearing in an expression.
func Vars(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	var rec func(Expr)
	rec = func(x Expr) {
		switch v := x.(type) {
		case *Var:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		case *BinOp:
			rec(v.L)
			rec(v.R)
		case *Call:
			for _, a := range v.Args {
				rec(a)
			}
		case *Agg:
			for _, n := range v.Vars {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	rec(e)
	return out
}

// String renders the program in source form.
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Facts {
		sb.WriteString(f.String())
		sb.WriteString(".\n")
	}
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders the rule in source form.
func (r *Rule) String() string {
	var sb strings.Builder
	if r.Label != "" {
		sb.WriteString(r.Label)
		sb.WriteByte(' ')
	}
	sb.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		sb.WriteString(" :- ")
		parts := make([]string, len(r.Body))
		for i, t := range r.Body {
			parts[i] = BodyTermString(t)
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	sb.WriteByte('.')
	return sb.String()
}

// BodyTermString renders one body term in source form.
func BodyTermString(t BodyTerm) string {
	switch v := t.(type) {
	case *Atom:
		return v.String()
	case *Assign:
		return fmt.Sprintf("%s = %s", v.Lhs, ExprString(v.Rhs))
	case *Cond:
		return ExprString(v.Expr)
	}
	return "?"
}

// String renders the atom in source form.
func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, arg := range a.Args {
		s := ExprString(arg)
		if i == a.LocPos {
			s = "@" + s
		}
		parts[i] = s
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// ExprString renders an expression in source form.
func ExprString(e Expr) string {
	switch v := e.(type) {
	case *Var:
		return v.Name
	case *Const:
		if v.Val.Kind() == types.KindStr {
			return fmt.Sprintf("%q", v.Val.AsStr())
		}
		return v.Val.String()
	case *BinOp:
		return fmt.Sprintf("%s %s %s", exprOperand(v.L), v.Op, exprOperand(v.R))
	case *Call:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			parts[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", v.Fn, strings.Join(parts, ","))
	case *Agg:
		if v.Star {
			return v.Fn + "<*>"
		}
		return v.Fn + "<" + strings.Join(v.Vars, ",") + ">"
	}
	return "?"
}

func exprOperand(e Expr) string {
	if b, ok := e.(*BinOp); ok {
		return "(" + ExprString(b) + ")"
	}
	return ExprString(e)
}
