// Command benchjson converts `go test -bench` output into the machine-
// readable before/after record the repo keeps under version control
// (BENCH_PR<n>.json). It parses benchmark result lines from a baseline
// file and a current file, averages repeated -count runs per benchmark,
// and emits one JSON document with both sides plus the speedup ratios.
//
// Usage:
//
//	go run ./cmd/benchjson -baseline BENCH_BASELINE_PR2.txt -current bench_current.txt -out BENCH_PR2.json
//
// The baseline may instead be a previously committed record: with
// -baseline-json the `current` side of that JSON document becomes the
// baseline, which is how CI compares a smoke run against the standing
// numbers. -print renders a benchstat-style delta table to stdout
// (report-only; the exit code never depends on the deltas).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is the averaged outcome of one benchmark.
type Result struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"` // B/op, allocs/op, custom units
}

// Comparison pairs a baseline and current result for one benchmark.
type Comparison struct {
	Baseline *Result `json:"baseline,omitempty"`
	Current  *Result `json:"current,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (>1 is faster).
	Speedup float64 `json:"speedup,omitempty"`
	// AllocRatio is current allocs/op divided by baseline allocs/op
	// (<1 is fewer allocations).
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

func parseFile(path string) (map[string]*Result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	type acc struct {
		runs    int
		ns      float64
		metrics map[string]float64
	}
	accs := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -N GOMAXPROCS suffix go test appends to names.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		a := accs[name]
		if a == nil {
			a = &acc{metrics: map[string]float64{}}
			accs[name] = a
			order = append(order, name)
		}
		a.runs++
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				a.ns += v
			} else {
				a.metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	out := map[string]*Result{}
	for name, a := range accs {
		r := &Result{Name: name, Runs: a.runs, NsPerOp: a.ns / float64(a.runs)}
		if len(a.metrics) > 0 {
			r.Metrics = map[string]float64{}
			for unit, sum := range a.metrics {
				r.Metrics[unit] = sum / float64(a.runs)
			}
		}
		out[name] = r
	}
	return out, order, nil
}

// jsonDoc mirrors the committed BENCH_PR<n>.json layout.
type jsonDoc struct {
	Note       string                 `json:"note"`
	Benchmarks map[string]*Comparison `json:"benchmarks"`
	Order      []string               `json:"order"`
}

// loadJSONBaseline reads a committed record and returns its `current` side
// as the baseline result set.
func loadJSONBaseline(path string) (map[string]*Result, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var doc jsonDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]*Result{}
	var order []string
	for _, name := range doc.Order {
		if c := doc.Benchmarks[name]; c != nil && c.Current != nil {
			out[name] = c.Current
			order = append(order, name)
		}
	}
	return out, order, nil
}

// printDelta renders a benchstat-style comparison table.
func printDelta(base, cur map[string]*Result, order []string) {
	fmt.Printf("%-34s %15s %15s %9s %10s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "allocs Δ")
	for _, name := range order {
		b, c := base[name], cur[name]
		switch {
		case b == nil && c == nil:
			continue
		case b == nil:
			fmt.Printf("%-34s %15s %15.0f %9s %10s\n", name, "-", c.NsPerOp, "new", "-")
		case c == nil:
			fmt.Printf("%-34s %15.0f %15s %9s %10s\n", name, b.NsPerOp, "-", "gone", "-")
		default:
			delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			allocs := "-"
			if ba, ca := b.Metrics["allocs/op"], c.Metrics["allocs/op"]; ba > 0 {
				allocs = fmt.Sprintf("%+.1f%%", (ca-ba)/ba*100)
			}
			fmt.Printf("%-34s %15.0f %15.0f %+8.1f%% %10s\n", name, b.NsPerOp, c.NsPerOp, delta, allocs)
		}
	}
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.txt", "pre-change bench output (text)")
	baselineJSON := flag.String("baseline-json", "", "committed BENCH_*.json whose `current` side is the baseline (overrides -baseline)")
	currentPath := flag.String("current", "", "post-change bench output (required)")
	outPath := flag.String("out", "", "output JSON path (omit to skip writing)")
	note := flag.String("note", "", "note recorded in the output document")
	doPrint := flag.Bool("print", false, "print a benchstat-style delta table to stdout")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -current is required")
		os.Exit(2)
	}

	var base map[string]*Result
	var baseOrder []string
	var err error
	if *baselineJSON != "" {
		base, baseOrder, err = loadJSONBaseline(*baselineJSON)
	} else {
		base, baseOrder, err = parseFile(*baselinePath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	cur, curOrder, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	order := baseOrder
	for _, name := range curOrder {
		if _, ok := base[name]; !ok {
			order = append(order, name)
		}
	}
	if *doPrint {
		printDelta(base, cur, order)
	}
	if *outPath == "" {
		return
	}
	docNote := *note
	if docNote == "" {
		docNote = "before/after benchmark record; regenerate with `make bench`"
	}
	doc := jsonDoc{
		Note:       docNote,
		Benchmarks: map[string]*Comparison{},
		Order:      order,
	}
	for _, name := range order {
		c := &Comparison{Baseline: base[name], Current: cur[name]}
		if c.Baseline != nil && c.Current != nil && c.Current.NsPerOp > 0 {
			c.Speedup = c.Baseline.NsPerOp / c.Current.NsPerOp
			ba := c.Baseline.Metrics["allocs/op"]
			ca := c.Current.Metrics["allocs/op"]
			if ba > 0 {
				c.AllocRatio = ca / ba
			}
		}
		doc.Benchmarks[name] = c
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *outPath, len(doc.Benchmarks))
}
