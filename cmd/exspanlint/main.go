// Command exspanlint is the multichecker driver for the engine's invariant
// analyzers (internal/lint): determinism, hotpath, interning and phaseown.
// `make lint` runs it over the whole tree (tests included) as a blocking CI
// gate; any finding exits 1.
//
// Usage:
//
//	exspanlint [-tests=false] [-only name[,name]] [-fieldalign] [patterns ...]
//
// Patterns default to ./... rooted at the current directory. -fieldalign
// switches to the report-only struct-packing sweep (always exits 0; see
// PERFORMANCE.md "Field alignment").
package main

import (
	"flag"
	"fmt"
	"go/types"
	"os"
	"runtime"
	"strings"

	"repro/internal/lint"
)

func main() {
	tests := flag.Bool("tests", true, "analyze _test.go files and external test packages too")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	fieldalign := flag.Bool("fieldalign", false, "report-only struct field-alignment sweep instead of the invariant analyzers")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", *tests && !*fieldalign, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exspanlint: %v\n", err)
		os.Exit(2)
	}

	if *fieldalign {
		reports := lint.FieldAlign(pkgs, types.SizesFor("gc", runtime.GOARCH))
		for _, r := range reports {
			fmt.Println(r)
		}
		fmt.Printf("exspanlint -fieldalign: %d structs with tighter packings available (report-only)\n", len(reports))
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "exspanlint: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "exspanlint: %d findings\n", len(diags))
		os.Exit(1)
	}
	fmt.Println("exspanlint ok")
}
