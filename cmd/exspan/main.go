// exspan runs an NDlog program over a simulated topology with a chosen
// provenance mode, reports fixpoint statistics, and optionally executes a
// provenance query against a named tuple.
//
// Examples:
//
//	exspan -app mincost -topo fig3 -mode reference -query 'bestPathCost(@a,c,5)'
//	exspan -app pathvector -topo transitstub -nodes 200 -mode value
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/types"
)

// appSpec describes how a named program is seeded and reported: its EDB
// beyond (or instead of) the topology's link tuples, and the derived
// predicates worth printing after fixpoint.
type appSpec struct {
	noLinks  bool
	base     func(*topology.Topology, int64) map[types.NodeID][]types.Tuple
	outPreds []string
}

var defaultSpec = appSpec{outPreds: []string{"bestPathCost", "bestPath", "pathCost", "path"}}

var appSpecs = map[string]appSpec{
	"mincost":       defaultSpec,
	"pathvector":    defaultSpec,
	"packetforward": defaultSpec,
	"chord": {
		noLinks: true,
		base: func(t *topology.Topology, seed int64) map[types.NodeID][]types.Tuple {
			b := apps.ChordBase(t)
			for _, lk := range apps.ChordLookups(t, 8, seed) {
				b[lk.Loc()] = append(b[lk.Loc()], lk)
			}
			return b
		},
		outPreds: []string{"succ", "pred", "finger", "lookup", "lookupRes"},
	},
	"policy": {
		base: func(t *topology.Topology, seed int64) map[types.NodeID][]types.Tuple {
			return apps.PolicyTuples(t)
		},
		outPreds: []string{"route", "bestRoute", "routeSet", "nextHop"},
	},
}

// parseShards resolves the -shards flag: "auto" sizes the per-node shard
// count for this host, and an explicit positive integer requests that
// count. Both go through engine.EffectiveShards, which caps the result at
// GOMAXPROCS — shards beyond the core count only add partition routing
// without parallelism — and the round runtime further collapses thin
// rounds to the serial path. (The engine API itself honors explicit counts
// verbatim; tests pin shard counts through it directly.)
func parseShards(s string) (int, error) {
	if s == "auto" {
		return engine.EffectiveShards(engine.AutoShards), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-shards must be a positive integer or 'auto' (got %q)", s)
	}
	return engine.EffectiveShards(n), nil
}

func main() {
	app := flag.String("app", "mincost", "program: mincost, pathvector, packetforward, chord, policy, or a .ndlog file path")
	topoName := flag.String("topo", "fig3", "topology: fig3, transitstub, ring")
	nodes := flag.Int("nodes", 100, "node count for generated topologies")
	modeName := flag.String("mode", "reference", "provenance mode: none, reference, value, centralized")
	seed := flag.Int64("seed", 42, "random seed")
	query := flag.String("query", "", "tuple to query after fixpoint, e.g. 'bestPathCost(@a,c,5)'")
	udfName := flag.String("udf", "polynomial", "query representation: polynomial, bdd, derivations, nodeset, derivability")
	dumpProv := flag.Bool("dump-prov", false, "print the prov/ruleExec partitions after fixpoint")
	explain := flag.Bool("explain", false, "after fixpoint, dump node 0's chosen rule plans (join order, probe\nindexes, pushed predicates) and the statistics snapshot behind them")
	deployMode := flag.Bool("deploy", false, "run over real UDP sockets (testbed mode) instead of the simulator")
	shardsFlag := flag.String("shards", "auto",
		"engine worker shards per node: a positive integer, or 'auto' to size for this\n"+
			"host (either way capped at GOMAXPROCS; thin rounds additionally collapse to\n"+
			"the serial path at runtime). With >1 shards a plain fixpoint run uses the parallel round\n"+
			"scheduler, while -query/-dump-prov/-deploy runs keep their driver and shard\n"+
			"each node's evaluation internally")
	faultSeed := flag.Int64("fault-seed", 0, "seed of the injected fault schedule (with -loss/-dup/-partition)")
	loss := flag.Float64("loss", 0, "per-datagram drop probability in [0,1); traffic then runs over the\nreliable ack/retransmit transport so the fixpoint is unchanged")
	dupP := flag.Float64("dup", 0, "per-datagram duplication probability in [0,1) (reliable transport, as -loss)")
	partition := flag.String("partition", "", "scheduled healing partition 'startMs:endMs:n1,n2,...' (simulator only)")
	flag.Parse()

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fatal(err)
	}

	prog, err := loadProgram(*app)
	if err != nil {
		fatal(err)
	}
	spec, ok := appSpecs[*app]
	if !ok {
		spec = defaultSpec // .ndlog file: link EDB, classic output preds
	}
	topo, err := loadTopology(*topoName, *nodes, *seed)
	if err != nil {
		fatal(err)
	}
	var base map[types.NodeID][]types.Tuple
	if spec.base != nil {
		base = spec.base(topo, *seed)
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		fatal(err)
	}

	// A fault schedule, when requested, is seeded and recorded in the
	// output, so every chaos run is reproducible from its printed flags.
	var plan *simnet.FaultPlan
	if *loss > 0 || *dupP > 0 || *partition != "" {
		plan = &simnet.FaultPlan{Seed: *faultSeed, Drop: *loss, Dup: *dupP}
		if *partition != "" {
			start, end, side, err := parsePartition(*partition)
			if err != nil {
				fatal(err)
			}
			plan.AddPartition(start, end, side...)
		}
	}

	if *deployMode {
		if *partition != "" {
			fatal(fmt.Errorf("-partition is simulator-only; -loss/-dup work with -deploy"))
		}
		runDeployment(topo, prog, mode, spec, base, shards, *loss, *dupP, *faultSeed)
		return
	}

	// A plain fixpoint run (no query, no provenance dump, no faults) uses
	// the parallel scheduler when sharding is requested: same results, no
	// simulator in the way. Queries and dumps need the simulator's virtual
	// clock and the query processor, fault schedules need its network, so
	// those stay on the simnet driver with per-node sharding instead.
	if shards > 1 && *query == "" && !*dumpProv && plan == nil {
		runScheduled(topo, prog, mode, spec, base, shards, *explain)
		return
	}

	cfg := core.Config{Topo: topo, Prog: prog, Mode: mode, Shards: shards, Faults: plan,
		Base: base, NoLinkTuples: spec.noLinks}
	c, err := core.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}
	switch *udfName {
	case "polynomial":
	case "bdd":
		setUDF(c, provquery.BDDProv{Alloc: c.Alloc})
	case "derivations":
		setUDF(c, provquery.Derivations{})
	case "nodeset":
		setUDF(c, provquery.NodeSet{})
	case "derivability":
		setUDF(c, provquery.Derivability{})
	default:
		fatal(fmt.Errorf("unknown -udf %q", *udfName))
	}

	if plan != nil {
		fmt.Println(plan.String())
	}
	fix, err := c.RunToFixpoint()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fixpoint: %.3fs virtual time, %d nodes, %d links\n",
		fix.Seconds(), topo.N, c.Net.NumLinks())
	fmt.Printf("communication: %.3f MB total, %.4f MB avg per node\n",
		float64(c.Net.TotalBytes)/1e6, c.AvgCommMB())
	fmt.Printf("network: %d datagrams dropped\n", c.Net.DroppedMsgs)
	if plan != nil {
		st := c.TransportStats()
		fmt.Printf("faults: %d dropped, %d duplicated, %d cut by partition/crash\n",
			plan.Dropped, plan.Duplicated, plan.Cut)
		fmt.Printf("transport: %d data frames, %d retransmits, %d pure acks, %d dups absorbed, %d reordered\n",
			st.DataSent, st.Retransmits, st.AcksSent, st.DupsDropped, st.OooBuffered)
	}
	var deltas, fired int64
	for _, h := range c.Hosts {
		deltas += h.Engine.DeltasProcessed()
		fired += h.Engine.RulesFired()
	}
	fmt.Printf("engine: %d deltas processed, %d rule firings\n", deltas, fired)
	for _, pred := range spec.outPreds {
		if n := len(c.TuplesOf(pred)); n > 0 {
			fmt.Printf("  %-14s %6d tuples\n", pred, n)
		}
	}

	if *explain {
		fmt.Println("plans (node 0):")
		c.Hosts[0].Engine.ExplainPlans(os.Stdout)
	}

	if *dumpProv {
		for _, h := range c.Hosts {
			for _, row := range h.Engine.Store.ProvRows() {
				fmt.Println("prov    ", row)
			}
			for _, row := range h.Engine.Store.RuleExecRows() {
				fmt.Println("ruleExec", row)
			}
		}
	}

	if *query != "" {
		runQuery(c, *query, *udfName)
	}
}

// runScheduled computes the fixpoint through the sharded parallel runtime
// (engine.Scheduler) and prints statistics comparable to the simulator path
// (identical tuple counts and byte totals; wall-clock time instead of
// virtual time).
func runScheduled(topo *topology.Topology, prog *ndlog.Program, mode engine.ProvMode, spec appSpec, base map[types.NodeID][]types.Tuple, shards int, explain bool) {
	compiled, err := engine.Compile(prog)
	if err != nil {
		fatal(err)
	}
	s := engine.NewScheduler(compiled, mode, topo.N, shards, 0)
	startAt := time.Now()
	if !spec.noLinks {
		for _, l := range topo.Links {
			s.InsertBase(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
			s.InsertBase(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
		}
	}
	for i := 0; i < topo.N; i++ {
		for _, tup := range base[types.NodeID(i)] {
			s.InsertBase(types.NodeID(i), tup)
		}
	}
	if err := s.Run(); err != nil {
		fatal(err)
	}
	fmt.Printf("sharded fixpoint: %.3fs wall clock, %d nodes x %d shards, %d scheduler rounds\n",
		time.Since(startAt).Seconds(), topo.N, shards, s.Rounds)
	fmt.Printf("communication: %.3f MB total, %.4f MB avg per node\n",
		float64(s.TotalBytes)/1e6, s.AvgSentMB())
	var deltas, fired int64
	for i := 0; i < s.NumNodes(); i++ {
		deltas += s.Node(i).DeltasProcessed()
		fired += s.Node(i).RulesFired()
	}
	fmt.Printf("engine: %d deltas processed, %d rule firings\n", deltas, fired)
	for _, pred := range spec.outPreds {
		n := 0
		for i := 0; i < s.NumNodes(); i++ {
			n += s.Node(i).TupleCount(pred)
		}
		if n > 0 {
			fmt.Printf("  %-14s %6d tuples\n", pred, n)
		}
	}
	if explain {
		fmt.Println("plans (node 0):")
		s.Node(0).ExplainPlans(os.Stdout)
	}
}

// runDeployment executes the program over real UDP sockets on loopback
// (the paper's testbed mode) and prints byte and latency statistics. With
// loss or duplication injected, traffic runs over the reliable transport
// and the recovery statistics are reported alongside.
func runDeployment(topo *topology.Topology, prog *ndlog.Program, mode engine.ProvMode, spec appSpec, base map[types.NodeID][]types.Tuple, shards int, loss, dup float64, faultSeed int64) {
	faulty := loss > 0 || dup > 0
	cl, err := deploy.NewCluster(deploy.Config{
		Topo: topo, Prog: prog, Mode: mode, Shards: shards,
		Base: base, NoLinkTuples: spec.noLinks,
		Reliable: faulty, Loss: loss, Dup: dup, FaultSeed: faultSeed,
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Stop()
	cl.Start()
	startAt := time.Now()
	if faulty {
		fmt.Printf("faults(seed=%d loss=%.3f dup=%.3f) over reliable transport\n", faultSeed, loss, dup)
	}
	cl.InsertLinks()
	if _, err := cl.WaitFixpoint(120 * time.Second); err != nil {
		fatal(err)
	}
	if err := cl.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("deployment fixpoint: %.3fs wall clock, %d UDP nodes\n",
		time.Since(startAt).Seconds(), topo.N)
	fmt.Printf("communication: %.1f KB total, %.2f KB avg per node\n",
		float64(cl.TotalSentBytes())/1e3, cl.AvgSentKB())
	fmt.Printf("network: %d datagrams dropped\n", cl.Dropped.Load())
	if faulty {
		st := cl.TransportStats()
		fmt.Printf("transport: %d data frames, %d retransmits, %d pure acks, %d dups absorbed, %d reordered\n",
			st.DataSent, st.Retransmits, st.AcksSent, st.DupsDropped, st.OooBuffered)
	}
	for _, pred := range spec.outPreds {
		if n := len(cl.Snapshot(pred)); n > 0 {
			fmt.Printf("  %-14s %6d tuples\n", pred, n)
		}
	}
}

// parsePartition parses 'startMs:endMs:n1,n2,...' into a healing cut.
func parsePartition(s string) (start, end simnet.Time, side []types.NodeID, err error) {
	var startMs, endMs int64
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return 0, 0, nil, fmt.Errorf("bad -partition %q, want 'startMs:endMs:n1,n2,...'", s)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &startMs); err != nil {
		return 0, 0, nil, fmt.Errorf("bad -partition start %q", parts[0])
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &endMs); err != nil {
		return 0, 0, nil, fmt.Errorf("bad -partition end %q", parts[1])
	}
	if endMs <= startMs {
		return 0, 0, nil, fmt.Errorf("-partition window [%d,%d) is empty; it must heal after it starts", startMs, endMs)
	}
	for _, f := range strings.Split(parts[2], ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 0 {
			return 0, 0, nil, fmt.Errorf("bad -partition node %q", f)
		}
		side = append(side, types.NodeID(n))
	}
	return simnet.Time(startMs) * simnet.Millisecond, simnet.Time(endMs) * simnet.Millisecond, side, nil
}

func setUDF(c *core.Cluster, u provquery.UDF) {
	for _, h := range c.Hosts {
		h.Query.UDF = u
	}
}

func runQuery(c *core.Cluster, q, udfName string) {
	t, err := parseTupleLiteral(q)
	if err != nil {
		fatal(err)
	}
	ref, ok := c.FindTuple(t)
	if !ok {
		fatal(fmt.Errorf("tuple %s not found (is it visible at node %s?)", t, t.Loc()))
	}
	issued := c.Sim.Now()
	var result []byte
	c.Query(ref.Loc, ref.VID, ref.Loc, func(payload []byte) { result = payload })
	if _, err := c.RunToFixpoint(); err != nil {
		fatal(err)
	}
	if result == nil {
		fatal(fmt.Errorf("query did not complete"))
	}
	fmt.Printf("query %s completed in %.4fs (virtual)\n", t, (c.Sim.Now() - issued).Seconds())
	switch udfName {
	case "polynomial":
		expr, err := provquery.DecodePolynomial(result)
		if err != nil {
			fatal(err)
		}
		fmt.Println("provenance:", expr)
	case "derivations":
		fmt.Println("derivations:", provquery.DecodeCount(result))
	case "nodeset":
		fmt.Println("nodes:", provquery.DecodeNodeSet(result))
	case "derivability":
		fmt.Println("derivable:", provquery.DecodeBool(result))
	default:
		fmt.Printf("result: %d bytes\n", len(result))
	}
}

func loadProgram(name string) (*ndlog.Program, error) {
	switch name {
	case "mincost":
		return apps.MinCost(), nil
	case "pathvector":
		return apps.PathVector(), nil
	case "packetforward":
		return apps.PacketForward(), nil
	case "chord":
		return apps.Chord(), nil
	case "policy":
		return apps.Policy(), nil
	}
	b, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return ndlog.Parse(string(b))
}

func loadTopology(name string, n int, seed int64) (*topology.Topology, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "fig3":
		return topology.Figure3(), nil
	case "transitstub":
		domains := n / 100
		if domains < 1 {
			domains = 1
		}
		return topology.TransitStub(topology.DefaultTransitStub(domains), rng), nil
	case "ring":
		return topology.Ring(n, rng), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func parseMode(s string) (engine.ProvMode, error) {
	switch s {
	case "none":
		return engine.ProvNone, nil
	case "reference":
		return engine.ProvReference, nil
	case "value":
		return engine.ProvValue, nil
	case "centralized":
		return engine.ProvCentralized, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// parseTupleLiteral parses e.g. bestPathCost(@a,c,5) into a tuple, using
// the ndlog constant conventions (single letters are nodes).
func parseTupleLiteral(s string) (types.Tuple, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), ".")
	prog, err := ndlog.Parse(s + ".")
	if err != nil {
		return types.Tuple{}, fmt.Errorf("bad tuple literal %q: %w", s, err)
	}
	if len(prog.Facts) != 1 {
		return types.Tuple{}, fmt.Errorf("expected one tuple literal, got %q", s)
	}
	atom := prog.Facts[0]
	t := types.Tuple{Pred: atom.Pred}
	for _, a := range atom.Args {
		c, ok := a.(*ndlog.Const)
		if !ok {
			return types.Tuple{}, fmt.Errorf("tuple arguments must be constants: %q", s)
		}
		t.Args = append(t.Args, c.Val)
	}
	return t, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exspan:", err)
	os.Exit(1)
}
