// exspan-bench regenerates the paper's evaluation tables and figures
// (§7, Tables 1-2 and Figures 6-17) and prints each as a text table whose
// rows mirror the series the paper plots.
//
// Usage:
//
//	exspan-bench                 # everything at paper scale
//	exspan-bench -scale 0.2      # quick pass at reduced scale
//	exspan-bench -fig 6          # one figure
//	exspan-bench -no-testbed     # skip the UDP deployment figures
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale in (0,1]: shrinks sizes and durations")
	seed := flag.Int64("seed", 42, "random seed")
	fig := flag.Int("fig", 0, "run a single figure (6-17); 0 = all")
	tables := flag.Bool("tables", false, "run only Tables 1-2")
	noTestbed := flag.Bool("no-testbed", false, "skip UDP deployment figures 16-17")
	ablations := flag.Bool("ablations", false, "run only the beyond-the-paper ablations")
	flag.Parse()

	p := experiments.Params{Scale: *scale, Seed: *seed}

	if *ablations {
		for _, gen := range []func(experiments.Params) (*experiments.Result, error){
			experiments.AblationModes, experiments.AblationInvalidation,
		} {
			res, err := gen(p)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Table())
		}
		return
	}

	if *tables {
		t1, t2, err := experiments.Tables12(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t1.Table())
		fmt.Println(t2.Table())
		return
	}

	if *fig != 0 {
		gens := map[int]func(experiments.Params) (*experiments.Result, error){
			6: experiments.Fig06, 7: experiments.Fig07, 8: experiments.Fig08,
			9: experiments.Fig09, 10: experiments.Fig10, 11: experiments.Fig11,
			12: experiments.Fig12, 13: experiments.Fig13, 14: experiments.Fig14,
			15: experiments.Fig15, 16: experiments.Fig16, 17: experiments.Fig17,
		}
		gen, ok := gens[*fig]
		if !ok {
			fatal(fmt.Errorf("unknown figure %d", *fig))
		}
		res, err := gen(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table())
		return
	}

	if err := experiments.Run(p, !*noTestbed, func(r *experiments.Result) {
		fmt.Println(r.Table())
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exspan-bench:", err)
	os.Exit(1)
}
