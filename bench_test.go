// Package repro holds the top-level benchmark harness: one benchmark per
// table and figure of the paper's evaluation (§7), plus micro-benchmarks of
// the underlying machinery. Figure benchmarks run the corresponding
// experiment at reduced scale per iteration and report the headline metric
// with b.ReportMetric; `go run ./cmd/exspan-bench` regenerates the figures
// at full paper scale.
package repro

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/apps"
	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/types"
)

func benchParams() experiments.Params { return experiments.Params{Scale: 0.2, Seed: 42} }

func mustFloat(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// --- Tables 1-2 -----------------------------------------------------------

func BenchmarkTable1Table2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1, t2, err := experiments.Tables12(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(t1.Rows) == 0 || len(t2.Rows) == 0 {
			b.Fatal("empty tables")
		}
	}
}

// --- Figures 6-15 (simulation) ---------------------------------------------

func benchFigure(b *testing.B, fn func(experiments.Params) (*experiments.Result, error),
	metric func(*experiments.Result) (float64, string)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := fn(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			v, unit := metric(res)
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkFig06MinCostCommCost(b *testing.B) {
	benchFigure(b, experiments.Fig06, func(r *experiments.Result) (float64, string) {
		last := r.Rows[len(r.Rows)-1]
		return mustFloat(b, last[2]), "refMB/node"
	})
}

func BenchmarkFig07PathVectorCommCost(b *testing.B) {
	benchFigure(b, experiments.Fig07, func(r *experiments.Result) (float64, string) {
		last := r.Rows[len(r.Rows)-1]
		return mustFloat(b, last[2]), "refMB/node"
	})
}

func BenchmarkFig08PacketForward(b *testing.B) {
	benchFigure(b, experiments.Fig08, nil)
}

func BenchmarkFig09MinCostChurn(b *testing.B) {
	benchFigure(b, experiments.Fig09, nil)
}

func BenchmarkFig10PathVectorChurn(b *testing.B) {
	benchFigure(b, experiments.Fig10, nil)
}

func BenchmarkFig11QueryCaching(b *testing.B) {
	benchFigure(b, experiments.Fig11, nil)
}

func BenchmarkFig12QueryLatencyCDF(b *testing.B) {
	benchFigure(b, experiments.Fig12, nil)
}

func BenchmarkFig13TraversalOrders(b *testing.B) {
	benchFigure(b, experiments.Fig13, func(r *experiments.Result) (float64, string) {
		return mustFloat(b, r.Rows[2][2]), "thresholdKB/node"
	})
}

func BenchmarkFig14TraversalLatencyCDF(b *testing.B) {
	benchFigure(b, experiments.Fig14, nil)
}

func BenchmarkFig15PolynomialVsBDD(b *testing.B) {
	benchFigure(b, experiments.Fig15, func(r *experiments.Result) (float64, string) {
		return mustFloat(b, r.Rows[1][2]), "bddKB/node"
	})
}

// --- Figures 16-17 (UDP deployment) ----------------------------------------

func BenchmarkFig16TestbedBandwidth(b *testing.B) {
	benchFigure(b, experiments.Fig16, nil)
}

func BenchmarkFig17TestbedFixpoint(b *testing.B) {
	benchFigure(b, experiments.Fig17, nil)
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationModes compares all four provenance distribution modes,
// including the centralized baseline the paper argues against.
func BenchmarkAblationModes(b *testing.B) {
	benchFigure(b, experiments.AblationModes, func(r *experiments.Result) (float64, string) {
		return mustFloat(b, r.Rows[3][2]), "centralShare"
	})
}

// BenchmarkAblationInvalidation measures the bandwidth price of §6.1 cache
// invalidation under churn.
func BenchmarkAblationInvalidation(b *testing.B) {
	benchFigure(b, experiments.AblationInvalidation, func(r *experiments.Result) (float64, string) {
		return mustFloat(b, r.Rows[1][1]), "churnKB/node"
	})
}

// --- Micro-benchmarks -------------------------------------------------------

// BenchmarkEngineFixpoint measures raw PSN evaluation: one MINCOST run to
// fixpoint on a 100-node transit-stub network (reference provenance).
func BenchmarkEngineFixpoint(b *testing.B) {
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := core.NewCluster(core.Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			b.Fatal(err)
		}
		var deltas int64
		for _, h := range c.Hosts {
			deltas += h.Engine.DeltasProcessed()
		}
		b.ReportMetric(float64(deltas), "deltas/op")
	}
}

// BenchmarkEngineFixpointSharded measures the same MINCOST fixpoint through
// the sharded runtime: every node's state hash-partitioned across worker
// shards, the cluster driven to quiescence by the parallel round scheduler
// instead of the discrete-event simulator. Results are bit-identical to the
// simulated fixpoint (see core.TestSchedulerMatchesSimnet); wall-clock gains
// come from batched rounds (no per-message event dispatch) and, on
// multi-core hosts, from running shards in parallel.
//
// Shard counts are *requested*, resolved through the adaptive selection
// production front-ends apply (engine.EffectiveShards): on a host with
// fewer cores than the request, the node collapses to the core count —
// shards=4 on a single-core machine runs the serial path instead of paying
// partition routing for parallelism it cannot have. MINCOST delta counts
// are shard-invariant, so the recorded deltas/op metric is identical
// however the request resolves.
func BenchmarkEngineFixpointSharded(b *testing.B) {
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rand.New(rand.NewSource(1)))
	prog, err := engine.Compile(apps.MinCost())
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(prog, engine.ProvReference, topo.N, engine.EffectiveShards(shards), 0)
				for _, l := range topo.Links {
					s.InsertBase(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
					s.InsertBase(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				var deltas int64
				for n := 0; n < s.NumNodes(); n++ {
					deltas += s.Node(n).DeltasProcessed()
				}
				b.ReportMetric(float64(deltas), "deltas/op")
			}
		})
	}
}

// BenchmarkChordLookup measures the CHORD workload end to end: overlay
// election (successor/predecessor/finger fixpoint) on a 64-node ring plus
// a 32-lookup batch forwarded recursively to resolution. The simnet
// sub-benchmark pays per-message event dispatch; the sharded ones drive
// the same workload through the round scheduler, whose batched merge
// rounds collapse intermediate election updates (hence lower deltas/op at
// the same fixpoint — each count is deterministic for its driver).
func BenchmarkChordLookup(b *testing.B) {
	topo := topology.Ring(64, rand.New(rand.NewSource(8)))
	base := apps.ChordBase(topo)
	lookups := apps.ChordLookups(topo, 32, 11)
	b.Run("simnet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := core.NewCluster(core.Config{Topo: topo, Prog: apps.Chord(),
				Mode: engine.ProvReference, NoLinkTuples: true, Base: base})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.RunToFixpoint(); err != nil {
				b.Fatal(err)
			}
			for _, lk := range lookups {
				c.InsertBase(lk)
			}
			if _, err := c.RunToFixpoint(); err != nil {
				b.Fatal(err)
			}
			var deltas int64
			for _, h := range c.Hosts {
				deltas += h.Engine.DeltasProcessed()
			}
			b.ReportMetric(float64(deltas), "deltas/op")
		}
	})
	prog, err := engine.Compile(apps.Chord())
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(prog, engine.ProvReference, topo.N, shards, 0)
				for n := 0; n < topo.N; n++ {
					for _, tup := range base[types.NodeID(n)] {
						s.InsertBase(types.NodeID(n), tup)
					}
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				for _, lk := range lookups {
					s.InsertBase(lk.Loc(), lk)
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				var deltas int64
				for n := 0; n < s.NumNodes(); n++ {
					deltas += s.Node(n).DeltasProcessed()
				}
				b.ReportMetric(float64(deltas), "deltas/op")
			}
		})
	}
}

// churnOp pairs a base tuple with its home node for delete/re-insert churn.
type churnOp struct {
	at  types.NodeID
	tup types.Tuple
}

// benchDRedChurn drives one deletion-churn workload through the scheduler:
// converge once outside the timer, then per iteration retract the churn set,
// run to fixpoint, restore it and run to fixpoint again. Each iteration ends
// at the same fixpoint it started from, so every sample does identical work.
func benchDRedChurn(b *testing.B, prog *engine.Program, nNodes int,
	setup func(*engine.Scheduler), churn []churnOp) {
	b.Helper()
	for _, perSuspect := range []bool{false, true} {
		release := "batched"
		if perSuspect {
			release = "per-suspect"
		}
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", release, shards), func(b *testing.B) {
				s := engine.NewScheduler(prog, engine.ProvReference, nNodes, shards, 0)
				if perSuspect {
					for n := 0; n < s.NumNodes(); n++ {
						s.Node(n).PerSuspectRelease = true
					}
				}
				setup(s)
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, op := range churn {
						s.DeleteBase(op.at, op.tup)
					}
					if err := s.Run(); err != nil {
						b.Fatal(err)
					}
					for _, op := range churn {
						s.InsertBase(op.at, op.tup)
					}
					if err := s.Run(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				var deltas int64
				for n := 0; n < s.NumNodes(); n++ {
					deltas += s.Node(n).DeltasProcessed()
				}
				if deltas == 0 {
					b.Fatal("churn produced no work")
				}
				b.ReportMetric(float64(deltas)/float64(b.N), "deltas/op")
			})
		}
	}
}

// BenchmarkDRedChurn measures the deletion path of the two-phase retraction
// protocol under steady churn. MINCOST retracts and restores one ring link —
// the count-to-infinity trigger, chasing re-derivations around the cycle;
// CHORD fails and rejoins one overlay node by churning its soft-state alive
// tuples, retracting successor/finger chains through it. "batched" is the
// default release discipline (staged suspects and aggregate promotions go
// out in stratified per-SCC waves, one rederive batch per wave);
// "per-suspect" caps every release wave at a single item — the pre-batching
// baseline kept behind Node.PerSuspectRelease — paying one full
// release/fixpoint round trip per suspect.
func BenchmarkDRedChurn(b *testing.B) {
	b.Run("mincost", func(b *testing.B) {
		// A unit-cost grid is the adversarial deletion workload: every
		// shortest path has equal-cost alternates, so retracting a central
		// link over-deletes many tuples that survive with another
		// derivation — each one a staged suspect the release phase must
		// validate and re-derive.
		const side = 6
		grid := &topology.Topology{N: side * side}
		id := func(r, c int) types.NodeID { return types.NodeID(r*side + c) }
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				if c+1 < side {
					grid.Links = append(grid.Links, topology.Link{U: id(r, c), V: id(r, c+1), Class: topology.ClassStub, Cost: 1})
				}
				if r+1 < side {
					grid.Links = append(grid.Links, topology.Link{U: id(r, c), V: id(r+1, c), Class: topology.ClassStub, Cost: 1})
				}
			}
		}
		prog, err := engine.Compile(apps.MinCost())
		if err != nil {
			b.Fatal(err)
		}
		u, v := id(side/2, side/2-1), id(side/2, side/2)
		churn := []churnOp{
			{u, apps.LinkTuple(u, v, 1)},
			{v, apps.LinkTuple(v, u, 1)},
		}
		benchDRedChurn(b, prog, grid.N, func(s *engine.Scheduler) {
			for _, l := range grid.Links {
				s.InsertBase(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
				s.InsertBase(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
			}
		}, churn)
	})
	b.Run("chord", func(b *testing.B) {
		topo := topology.Ring(32, rand.New(rand.NewSource(8)))
		prog, err := engine.Compile(apps.Chord())
		if err != nil {
			b.Fatal(err)
		}
		base := apps.ChordBase(topo)
		// Node 5 fails and rejoins: its neighbors lose their alive soft
		// state for it, and it loses its own view of them.
		const down = types.NodeID(5)
		var churn []churnOp
		for _, l := range topo.Links {
			if l.U == down || l.V == down {
				churn = append(churn,
					churnOp{l.U, apps.AliveTuple(l.U, l.V)},
					churnOp{l.V, apps.AliveTuple(l.V, l.U)})
			}
		}
		benchDRedChurn(b, prog, topo.N, func(s *engine.Scheduler) {
			for n := 0; n < topo.N; n++ {
				for _, tup := range base[types.NodeID(n)] {
					s.InsertBase(types.NodeID(n), tup)
				}
			}
		}, churn)
	})
}

// BenchmarkPolicyPathVector measures the POLICY workload: policy-gated
// path-vector fixpoint on a 16-node ring, with MIN route selection and the
// AGGLIST Adj-RIB maintained per destination. Heavier per delta than
// MINCOST — pp2 is a 3-atom join and every route churn rewrites an
// aggregate group — which is exactly what it is here to measure.
func BenchmarkPolicyPathVector(b *testing.B) {
	topo := topology.Ring(16, rand.New(rand.NewSource(8)))
	base := apps.PolicyTuples(topo)
	b.Run("simnet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := core.NewCluster(core.Config{Topo: topo, Prog: apps.Policy(),
				Mode: engine.ProvReference, Base: base})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.RunToFixpoint(); err != nil {
				b.Fatal(err)
			}
			var deltas int64
			for _, h := range c.Hosts {
				deltas += h.Engine.DeltasProcessed()
			}
			b.ReportMetric(float64(deltas), "deltas/op")
		}
	})
	prog, err := engine.Compile(apps.Policy())
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(prog, engine.ProvReference, topo.N, shards, 0)
				for _, l := range topo.Links {
					s.InsertBase(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
					s.InsertBase(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
				}
				for n := 0; n < topo.N; n++ {
					for _, tup := range base[types.NodeID(n)] {
						s.InsertBase(types.NodeID(n), tup)
					}
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				var deltas int64
				for n := 0; n < s.NumNodes(); n++ {
					deltas += s.Node(n).DeltasProcessed()
				}
				b.ReportMetric(float64(deltas), "deltas/op")
			}
		})
	}
}

// BenchmarkPlannerAdversarial measures the cost-based planner against an
// adversarial syntax order: a 3-atom rule whose body lists a 2000-row
// relation before a 2-row one sharing the same join keys. The syntax-order
// plan enumerates ~2000 candidates per event before filtering; the planner,
// fed only live cardinality statistics (no hooks), probes the selective
// relation first. The fixpoint is identical either way — only work order
// changes — so ops/sec is a pure measure of join-order quality.
func BenchmarkPlannerAdversarial(b *testing.B) {
	prog, err := engine.Compile(ndlog.MustParse(`r1 out(@X,P) :- eGo(@X), big(@X,P), sel(@X,P).`))
	if err != nil {
		b.Fatal(err)
	}
	for _, planned := range []bool{false, true} {
		name := "syntax-order"
		if planned {
			name = "planned"
		}
		b.Run(name, func(b *testing.B) {
			n := engine.NewNode(0, prog, engine.ProvNone, dropTransport{}, nil)
			if !planned {
				n.NoReplan = true
			}
			for i := 0; i < 2000; i++ {
				n.InsertBase(types.NewTuple("big", types.Node(0), types.Int(int64(i))))
			}
			for i := 0; i < 2; i++ {
				n.InsertBase(types.NewTuple("sel", types.Node(0), types.Int(int64(i))))
			}
			engine.Settle(n)
			if planned {
				// The insert phase crosses the drift gate, so Settle's idle
				// hook may already have re-planned; force once to be sure and
				// verify the chosen order probes the selective relation first.
				n.ForceReplan()
				var sb strings.Builder
				n.ExplainPlans(&sb)
				out := sb.String()
				if si, bi := strings.Index(out, "join sel"), strings.Index(out, "join big"); si < 0 || (bi >= 0 && bi < si) {
					b.Fatal("planner kept the syntax order")
				}
			}
			ev := types.NewTuple("eGo", types.Node(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.InjectEvent(ev)
			}
			b.StopTimer()
			if n.Err != nil {
				b.Fatal(n.Err)
			}
			if n.TupleCount("out") != 2 {
				b.Fatalf("out count = %d, want 2", n.TupleCount("out"))
			}
		})
	}
}

// dropTransport discards sends; the adversarial planner benchmark derives
// only node-local heads.
type dropTransport struct{}

func (dropTransport) Send(from, to types.NodeID, m *engine.Message) {}

// BenchmarkQueryBFS measures end-to-end distributed polynomial queries on a
// converged 100-node network.
func BenchmarkQueryBFS(b *testing.B) {
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rand.New(rand.NewSource(1)))
	c, err := core.NewCluster(core.Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		b.Fatal(err)
	}
	targets := c.TuplesOf("bestPathCost")
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := targets[rng.Intn(len(targets))]
		done := false
		c.Query(types.NodeID(rng.Intn(topo.N)), ref.VID, ref.Loc, func([]byte) { done = true })
		c.Sim.Run()
		if !done {
			b.Fatal("query incomplete")
		}
	}
}

// BenchmarkProvenanceRewrite measures the Algorithm 1 source-to-source
// transformation.
func BenchmarkProvenanceRewrite(b *testing.B) {
	prog := apps.PacketForward()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ndlog.ProvenanceRewrite(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBDDOps measures BDD construction over provenance-shaped
// expressions: a union of path-like joins over overlapping consecutive
// variable windows, the structure route derivations produce (arbitrary
// variable interleavings would blow up any ordered BDD — network
// provenance stays compact because derivations share locality).
func BenchmarkBDDOps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := bdd.New()
		acc := bdd.False
		for d := 0; d < 50; d++ {
			term := bdd.True
			for v := 0; v < 6; v++ {
				term = m.And(term, m.Var(d+v))
			}
			acc = m.Or(acc, term)
		}
		if acc == bdd.False {
			b.Fatal("unexpected false")
		}
	}
}

// BenchmarkPolynomialEncode measures polynomial wire encoding/decoding.
func BenchmarkPolynomialEncode(b *testing.B) {
	var kids []*algebra.Expr
	for i := 0; i < 32; i++ {
		var vid types.ID
		vid[0] = byte(i)
		kids = append(kids, algebra.NewBase(algebra.Base{VID: vid, Label: "link(@a,b,1)", Node: 1}))
	}
	expr := algebra.Sum("@a", algebra.Prod("r1@a", kids[:16]...), algebra.Prod("r2@b", kids[16:]...))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := expr.EncodePayload()
		if _, _, err := algebra.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageCodec measures tuple-message serialization (the per-hop
// cost on the UDP path).
func BenchmarkMessageCodec(b *testing.B) {
	m := &engine.Message{
		Tuple:  types.NewTuple("pathCost", types.Node(3), types.Node(9), types.Int(12)),
		Delta:  engine.Insert,
		HasRef: true,
		RID:    types.HashString("rid"),
		RLoc:   3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := m.Encode(nil)
		if _, err := engine.DecodeMessage(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetDispatch measures the simulator substrate in isolation:
// scheduling and delivering messages across a multi-hop topology, with no
// engine work attached. This is the per-message overhead every figure
// benchmark pays millions of times; it must stay allocation-free.
func BenchmarkSimnetDispatch(b *testing.B) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, 32)
	for i := 1; i < 32; i++ {
		nw.AddLink(types.NodeID(i-1), types.NodeID(i), simnet.Link{Latency: simnet.Millisecond, Bps: 1e9})
	}
	delivered := 0
	for i := 0; i < 32; i++ {
		nw.Register(types.NodeID(i), simnet.HandlerFunc(func(types.NodeID, any, int) { delivered++ }))
	}
	payload := &engine.Message{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := types.NodeID(i % 32)
		to := types.NodeID((i * 11) % 32)
		nw.Send(from, to, payload, 128)
		if i%64 == 63 {
			sim.Run()
		}
	}
	sim.Run()
	if delivered == 0 {
		b.Fatal("no messages delivered")
	}
}

// BenchmarkValueIntern measures the steady-state cost of the compact value
// layer: re-constructing already-interned values (the common case for
// predicates, path lists and IDs under churn) and building the fixed-width
// handle keys relations and indexes hash on. Both must stay allocation-free
// — the intern_test.go / hotpath_test.go fences enforce that; this tracks
// the cycle cost.
func BenchmarkValueIntern(b *testing.B) {
	id := types.HashString("bench-intern")
	elems := []types.Value{types.Node(1), types.Node(2), types.Node(3)}
	warm := types.NewTuple("p", types.Node(1), types.Str("bench-intern"),
		types.IDVal(id), types.List(elems...))
	var key []byte
	key = warm.AppendArgsKey(key[:0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := types.Str("bench-intern")
		w := types.IDVal(id)
		l := types.List(elems...)
		key = key[:0]
		key = v.AppendKey(key)
		key = w.AppendKey(key)
		key = l.AppendKey(key)
		if len(key) == 0 {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkCacheInvalidation measures provenance-change invalidation under
// churn with warm caches.
func BenchmarkCacheInvalidation(b *testing.B) {
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rand.New(rand.NewSource(1)))
	c, err := core.NewCluster(core.Config{
		Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference, CacheOn: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		b.Fatal(err)
	}
	// Warm caches with queries.
	rng := rand.New(rand.NewSource(3))
	targets := c.TuplesOf("bestPathCost")
	for i := 0; i < 200; i++ {
		ref := targets[rng.Intn(len(targets))]
		c.Query(types.NodeID(rng.Intn(topo.N)), ref.VID, ref.Loc, func([]byte) {})
	}
	c.Sim.Run()
	link := topo.Links[topo.StubStubLinks[0]]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RemoveLink(link)
		c.Sim.Run()
		c.AddLink(link)
		c.Sim.Run()
	}
	if err := c.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProvQuery is provquery.Processor in isolation: repeated local
// polynomial queries against a converged Figure 3 store.
func BenchmarkProvQuery(b *testing.B) {
	c, err := core.NewCluster(core.Config{Topo: topology.Figure3(), Prog: apps.MinCost(), Mode: engine.ProvReference})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		b.Fatal(err)
	}
	ref, ok := c.FindTuple(apps.BestPathCostTuple(0, 2, 5))
	if !ok {
		b.Fatal("missing tuple")
	}
	var out provquery.UDF = provquery.Polynomial{}
	_ = out
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		c.Query(ref.Loc, ref.VID, ref.Loc, func([]byte) { done = true })
		c.Sim.Run()
		if !done {
			b.Fatal("query incomplete")
		}
	}
}
