# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` regenerates the machine-readable
# before/after record in BENCH_PR1.json against the checked-in baseline.

GO ?= go
BENCHES := BenchmarkEngineFixpoint|BenchmarkQueryBFS|BenchmarkCacheInvalidation

.PHONY: all build vet test check bench bench-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: vet build test

# Full hot-path benchmark run: three samples of each tracked benchmark with
# allocation stats, merged with the pre-PR baseline into BENCH_PR1.json.
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=5x -count=3 . | tee bench_current.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_BASELINE.txt -current bench_current.txt -out BENCH_PR1.json

# One-iteration smoke run used by CI to catch benchmark bit-rot cheaply.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineFixpoint' -benchtime=1x .

clean:
	rm -f bench_current.txt
