# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` regenerates the machine-readable
# before/after record in BENCH_PR2.json against the checked-in pre-PR2
# baseline run, and `make bench-compare` prints a benchstat-style delta of
# a smoke run against the committed BENCH_PR1.json numbers (report-only).

GO ?= go
BENCHES := BenchmarkEngineFixpoint|BenchmarkQueryBFS|BenchmarkCacheInvalidation

.PHONY: all build vet test check bench bench-smoke bench-compare clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: vet build test

# Full hot-path benchmark run: three samples of each tracked benchmark with
# allocation stats, merged with the pre-PR2 baseline into BENCH_PR2.json.
# The simnet dispatch micro-benchmark is appended with a time-based budget
# (per-op cost is tens of nanoseconds; 10 iterations would be noise).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=10x -count=3 . | tee bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSimnetDispatch' -benchmem -benchtime=2s . | tee -a bench_current.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_BASELINE_PR2.txt -current bench_current.txt \
		-out BENCH_PR2.json -print \
		-note "before/after results for the allocation-free simnet overhaul (PR 2); baseline is the PR 1 code on the same hardware; regenerate with make bench"

# One-iteration smoke run used by CI to catch benchmark bit-rot cheaply.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineFixpoint' -benchtime=1x .

# CI delta report: smoke-run the tracked benchmarks once and print the
# change against the committed PR 1 record. Report-only — the `-` prefix
# keeps a regression (or a noisy runner) from failing the job.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=1x . | tee bench_smoke.txt
	-$(GO) run ./cmd/benchjson -baseline-json BENCH_PR1.json -current bench_smoke.txt -print

clean:
	rm -f bench_current.txt bench_smoke.txt
