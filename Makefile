# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` regenerates the machine-readable
# before/after record in BENCH_PR4.json against the checked-in pre-PR4
# baseline run, and `make bench-compare` prints a benchstat-style delta of
# a smoke run against the committed BENCH_PR3.json numbers (report-only).

GO ?= go
BENCHES := BenchmarkEngineFixpoint|BenchmarkEngineFixpointSharded|BenchmarkQueryBFS|BenchmarkCacheInvalidation
# Packages whose tests exercise concurrent code paths (worker shards, the
# round scheduler, UDP node processes); test-race gates them under the race
# detector and CI runs it on every push.
RACE_PKGS := ./internal/engine/... ./internal/provenance/... ./internal/deploy/...

.PHONY: all build fmt vet test test-race doccheck check bench bench-smoke bench-compare clean

all: check

build:
	$(GO) build ./...

# Formatting gate: fails loudly when any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector gate over the concurrently-evaluated packages — mandatory
# since the sharded runtime fires rules across worker goroutines. GOMAXPROCS
# is pinned ≥ 4 so the gate exercises the parallel phases even on single-core
# runners (the runtime falls back to inline execution at GOMAXPROCS=1, which
# would make the gate vacuous).
test-race:
	GOMAXPROCS=4 $(GO) test -race $(RACE_PKGS)

# Documentation link check: every local file referenced from the markdown
# docs must exist, so ARCHITECTURE.md / docs/wire-format.md / README files
# cannot silently rot as the tree moves.
doccheck:
	@fail=0; \
	for doc in *.md docs/*.md examples/*.md; do \
		[ -f "$$doc" ] || continue; \
		dir=$$(dirname $$doc); \
		for ref in $$(grep -oE '\]\(([^)#]+)' $$doc | sed 's/](//' | grep -v '^http'); do \
			if [ ! -e "$$dir/$$ref" ] && [ ! -e "$$ref" ]; then \
				echo "$$doc: broken link -> $$ref"; fail=1; \
			fi; \
		done; \
	done; \
	for ref in $$(grep -ohE '\x60(internal|docs|examples|cmd)/[A-Za-z0-9_./-]+\x60' *.md docs/*.md examples/*.md 2>/dev/null | tr -d '\x60' | sort -u); do \
		if [ ! -e "$$ref" ]; then echo "doc reference missing from tree: $$ref"; fail=1; fi; \
	done; \
	if [ $$fail -eq 0 ]; then echo "doccheck ok"; else exit 1; fi

check: fmt vet build test test-race doccheck

# Full hot-path benchmark run: three samples of each tracked benchmark with
# allocation stats, merged with the pre-PR4 baseline into BENCH_PR4.json.
# The simnet dispatch micro-benchmark is appended with a time-based budget
# (per-op cost is tens of nanoseconds; 10 iterations would be noise).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=10x -count=3 . | tee bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSimnetDispatch' -benchmem -benchtime=2s . | tee -a bench_current.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_BASELINE_PR4.txt -current bench_current.txt \
		-out BENCH_PR4.json -print \
		-note "before/after results for the sharded parallel engine runtime (PR 4); baseline is the PR 3 code on the same hardware (single-core container — sharded configs pay partition overhead without parallel payback here); regenerate with make bench"

# One-iteration smoke run used by CI to catch benchmark bit-rot cheaply.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineFixpoint' -benchtime=1x .

# CI delta report: smoke-run the tracked benchmarks once and print the
# change against the committed PR 3 record. Report-only — the `-` prefix
# keeps a regression (or a noisy runner) from failing the job.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=1x . | tee bench_smoke.txt
	-$(GO) run ./cmd/benchjson -baseline-json BENCH_PR3.json -current bench_smoke.txt -print

clean:
	rm -f bench_current.txt bench_smoke.txt
