# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` regenerates the machine-readable
# before/after record in BENCH_PR5.json against the committed PR 4 record,
# and `make bench-compare` prints a benchstat-style delta of a smoke run
# against the committed BENCH_PR4.json numbers (report-only).

GO ?= go
BENCHES := BenchmarkEngineFixpoint|BenchmarkEngineFixpointSharded|BenchmarkQueryBFS|BenchmarkCacheInvalidation
# Packages whose tests exercise concurrent code paths (worker shards, the
# round scheduler, UDP node processes); test-race gates them under the race
# detector and CI runs it on every push.
RACE_PKGS := ./internal/engine/... ./internal/provenance/... ./internal/deploy/...

.PHONY: all build fmt vet test test-race doccheck fuzz-smoke check bench bench-smoke bench-compare clean

all: check

build:
	$(GO) build ./...

# Formatting gate: fails loudly when any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector gate over the concurrently-evaluated packages — mandatory
# since the sharded runtime fires rules across worker goroutines. GOMAXPROCS
# is pinned ≥ 4 so the gate exercises the parallel phases even on single-core
# runners (the runtime falls back to inline execution at GOMAXPROCS=1, which
# would make the gate vacuous).
test-race:
	GOMAXPROCS=4 $(GO) test -race $(RACE_PKGS)

# Documentation link check: every local file referenced from the markdown
# docs must exist, so ARCHITECTURE.md / docs/wire-format.md / README files
# cannot silently rot as the tree moves.
doccheck:
	@fail=0; \
	for doc in *.md docs/*.md examples/*.md; do \
		[ -f "$$doc" ] || continue; \
		dir=$$(dirname $$doc); \
		for ref in $$(grep -oE '\]\(([^)#]+)' $$doc | sed 's/](//' | grep -v '^http'); do \
			if [ ! -e "$$dir/$$ref" ] && [ ! -e "$$ref" ]; then \
				echo "$$doc: broken link -> $$ref"; fail=1; \
			fi; \
		done; \
	done; \
	for ref in $$(grep -ohE '\x60(internal|docs|examples|cmd)/[A-Za-z0-9_./-]+\x60' *.md docs/*.md examples/*.md 2>/dev/null | tr -d '\x60' | sort -u); do \
		if [ ! -e "$$ref" ]; then echo "doc reference missing from tree: $$ref"; fail=1; fi; \
	done; \
	if [ $$fail -eq 0 ]; then echo "doccheck ok"; else exit 1; fi

# Decode-fuzz smoke gate: a short budget per wire-format fuzz target (value
# and tuple codecs), so strictness regressions in the decoders are caught
# before the checked-in corpus grows stale. Go runs one fuzz target per
# invocation, hence the two lines.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeValue$$' -fuzztime 10s ./internal/types
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeTuple$$' -fuzztime 10s ./internal/types

check: fmt vet build test test-race doccheck fuzz-smoke

# Full hot-path benchmark run: three samples of each tracked benchmark with
# allocation stats, compared against the committed PR 4 record into
# BENCH_PR5.json. The simnet dispatch micro-benchmark is appended with a
# time-based budget (per-op cost is tens of nanoseconds; 10 iterations
# would be noise).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=10x -count=3 . | tee bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSimnetDispatch' -benchmem -benchtime=2s . | tee -a bench_current.txt
	$(GO) run ./cmd/benchjson -baseline-json BENCH_PR4.json -current bench_current.txt \
		-out BENCH_PR5.json -print \
		-note "before/after results for the convergent-deletion retraction protocol (PR 5); baseline is the PR 4 record on the same hardware. Insert-only fixpoints are unchanged within noise (identical deltas and wire bytes); retraction workloads that previously diverged now terminate. Regenerate with make bench"

# One-iteration smoke run used by CI to catch benchmark bit-rot cheaply.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineFixpoint' -benchtime=1x .

# CI delta report: smoke-run the tracked benchmarks once and print the
# change against the committed PR 4 record. Report-only — the `-` prefix
# keeps a regression (or a noisy runner) from failing the job.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=1x . | tee bench_smoke.txt
	-$(GO) run ./cmd/benchjson -baseline-json BENCH_PR4.json -current bench_smoke.txt -print

clean:
	rm -f bench_current.txt bench_smoke.txt
