# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` regenerates the machine-readable
# before/after record in BENCH_PR9.json against the committed PR 8 record,
# and `make bench-compare` prints a benchstat-style delta of a smoke run
# against the committed BENCH_PR8.json numbers (report-only).

GO ?= go
BENCHES := BenchmarkEngineFixpoint|BenchmarkEngineFixpointSharded|BenchmarkPlannerAdversarial|BenchmarkChordLookup|BenchmarkPolicyPathVector|BenchmarkDRedChurn|BenchmarkQueryBFS|BenchmarkCacheInvalidation
# Packages whose tests exercise concurrent code paths (worker shards, the
# round scheduler, UDP node processes); test-race gates them under the race
# detector and CI runs it on every push.
RACE_PKGS := ./internal/engine/... ./internal/provenance/... ./internal/deploy/... ./internal/transport/...

.PHONY: all build fmt vet lint lint-extra test test-race chaos-smoke scale-smoke doccheck fuzz-smoke check bench bench-smoke bench-compare clean

all: check

build:
	$(GO) build ./...

# Formatting gate: fails loudly when any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Invariant lint gate: the exspanlint suite (internal/lint) machine-checks
# bit-exact determinism, zero-alloc hot paths, interned-value identity and
# shard phase ownership over the whole tree, tests included. Blocking — a
# finding fails the build; suppress individual findings only with a reasoned
# //exspanlint:<key> comment (see ARCHITECTURE.md "Static analysis").
lint:
	$(GO) run ./cmd/exspanlint ./...

# Report-only extras: third-party linters when the toolchain has them
# installed (they are not vendored — the module pins no dependencies).
# Detect-and-skip keeps this target green on minimal containers; the `-`
# prefix keeps real findings advisory, as bench-compare does.
lint-extra:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck $$(staticcheck -version 2>/dev/null)"; \
		staticcheck ./... || true; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || true; \
	else echo "govulncheck not installed; skipping"; fi

test:
	$(GO) test ./...

# Race-detector gate over the concurrently-evaluated packages — mandatory
# since the sharded runtime fires rules and merges rounds across worker
# goroutines. Runs at both ends of the adaptive runtime's range: GOMAXPROCS=4
# exercises the parallel fire and merge phases, GOMAXPROCS=1 exercises the
# inline fallback those phases compile down to (and proves nothing races on
# the way into it).
# -count=1 on both legs: the test cache does not key on GOMAXPROCS (the
# runtime reads it, not os.Getenv), so without it the second leg would
# silently reuse the first leg's cached result and the parallel merge
# fan-out would never run under the race detector.
test-race:
	GOMAXPROCS=1 $(GO) test -race -count=1 $(RACE_PKGS)
	GOMAXPROCS=4 $(GO) test -race -count=1 $(RACE_PKGS)

# Chaos gate: the seeded fault-schedule matrix under the race detector — the
# transport state machine end to end, simnet fault injection and timer
# interleaving, the core chaos-equivalence fences (loss/dup/jitter/partition/
# crash vs the fault-free fixpoint, all provenance modes), and the deploy
# loss + kill/restart reconvergence tests over real UDP sockets.
chaos-smoke:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/transport/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'Fault|OnIdle|Jitter|Partition|Crash|Unreachable' ./internal/simnet/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'Chaos' ./internal/core/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'Chaos|Timeout' ./internal/deploy/

# Scale gate: the 10k-node CHORD determinism smoke — two full sharded runs
# of the workload suite's largest topology must agree bit for bit (delta
# counts, wire bytes, sampled relation state). Skipped under -short, so
# `go test -short ./...` stays fast; this target runs it by name.
scale-smoke:
	$(GO) test -run 'TestScaleChordDeterminism10k' -v ./internal/core/

# Documentation link check: every local file referenced from the markdown
# docs must exist, so ARCHITECTURE.md / docs/wire-format.md / README files
# cannot silently rot as the tree moves.
doccheck:
	@fail=0; \
	for doc in *.md docs/*.md examples/*.md; do \
		[ -f "$$doc" ] || continue; \
		dir=$$(dirname $$doc); \
		for ref in $$(grep -oE '\]\(([^)#]+)' $$doc | sed 's/](//' | grep -v '^http'); do \
			if [ ! -e "$$dir/$$ref" ] && [ ! -e "$$ref" ]; then \
				echo "$$doc: broken link -> $$ref"; fail=1; \
			fi; \
		done; \
	done; \
	for ref in $$(grep -ohE '\x60(internal|docs|examples|cmd)/[A-Za-z0-9_./-]+\x60' *.md docs/*.md examples/*.md 2>/dev/null | tr -d '\x60' | sort -u); do \
		if [ ! -e "$$ref" ]; then echo "doc reference missing from tree: $$ref"; fail=1; fi; \
	done; \
	if [ $$fail -eq 0 ]; then echo "doccheck ok"; else exit 1; fi

# Decode-fuzz smoke gate: a short budget per wire-format fuzz target (value
# and tuple codecs), so strictness regressions in the decoders are caught
# before the checked-in corpus grows stale. Go runs one fuzz target per
# invocation, hence the two lines.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeValue$$' -fuzztime 10s ./internal/types
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeTuple$$' -fuzztime 10s ./internal/types
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrameHeader$$' -fuzztime 10s ./internal/transport

# lint sits before test-race: a lint finding is seconds to surface, the race
# legs are minutes — fail fast on the cheap gate.
check: fmt vet build lint test test-race chaos-smoke doccheck fuzz-smoke

# Full hot-path benchmark run: three samples of each tracked benchmark with
# allocation stats, compared against the committed PR 8 record into
# BENCH_PR9.json. The simnet dispatch micro-benchmark is appended with a
# time-based budget (per-op cost is tens of nanoseconds; 10 iterations
# would be noise).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=10x -count=3 . | tee bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSimnetDispatch' -benchmem -benchtime=2s . | tee -a bench_current.txt
	$(GO) run ./cmd/benchjson -baseline-json BENCH_PR8.json -current bench_current.txt \
		-out BENCH_PR9.json -print \
		-note "before/after results for the parallel merge pipeline, batched DRed release waves and adaptive shard runtime (PR 9); baseline is the PR 8 record on the same hardware. The legacy fixpoint benchmarks must keep deltas and wire bytes bit-identical to PR 8 (work order changes, fixpoints do not); BenchmarkDRedChurn is the new deletion-churn baseline, whose batched/* variants must beat per-suspect/* on the mincost grid. Regenerate with make bench"

# One-iteration smoke run used by CI to catch benchmark bit-rot cheaply.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineFixpoint' -benchtime=1x .

# CI delta report: smoke-run the tracked benchmarks once and print the
# change against the committed PR 8 record. Report-only — the `-` prefix
# keeps a regression (or a noisy runner) from failing the job.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=1x . | tee bench_smoke.txt
	-$(GO) run ./cmd/benchjson -baseline-json BENCH_PR8.json -current bench_smoke.txt -print

clean:
	rm -f bench_current.txt bench_smoke.txt
